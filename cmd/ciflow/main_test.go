package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"ciflow/internal/obs"
)

func TestRunVerbs(t *testing.T) {
	// Fast verbs run end to end; slower sweeps are covered by the
	// analysis package's own tests.
	for _, args := range [][]string{
		{"table3"},
		{"table2"},
		{"area"},
		{"ablate-keycomp"},
		{"memory", "-bench", "ARK"},
		{"table2", "-csv"},
		{"fig4", "-bench", "DPRIVE"},
		{"fig4", "-bench", "DPRIVE", "-csv"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"fig4", "-bench", "NOPE"},
		{"table2", "-mem", "1"}, // far below any benchmark's minimum
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestThroughputRun(t *testing.T) {
	// Tiny configuration keeps this a smoke test; the hks package
	// owns the exhaustive bit-exactness matrix.
	rep, err := throughputRun("all", 2, 2, 5, 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitExact {
		t.Fatal("engine output not bit-exact with serial")
	}
	if len(rep.Results) != 4 { // serial + MP + DC + OC
		t.Fatalf("got %d result rows, want 4", len(rep.Results))
	}
	for _, row := range rep.Results {
		if row.OpsPerSec <= 0 || row.P50Ms < 0 || row.P99Ms < row.P50Ms {
			t.Fatalf("implausible row %+v", row)
		}
	}
	if rep.Hoisted != nil {
		t.Fatal("hoisted section present without -hoisted")
	}
}

func TestThroughputRunHoisted(t *testing.T) {
	rep, err := throughputRun("mp", 2, 2, 5, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	hr := rep.Hoisted
	if hr == nil {
		t.Fatal("missing hoisted section")
	}
	if !hr.BitExact {
		t.Fatal("hoisted outputs not bit-exact with per-rotation")
	}
	if hr.Rotations != 3 || len(hr.Results) != 2 { // serial + MP
		t.Fatalf("unexpected hoisted shape: %+v", hr)
	}
	if hr.ModelOpsSaved != 2*hr.ModUpModOps {
		t.Fatalf("model ops saved %d, want (k-1)*ModUp = %d", hr.ModelOpsSaved, 2*hr.ModUpModOps)
	}
	if hr.ModelSpeedup <= 1 || hr.ModelSavedFrac <= 0 || hr.ModelSavedFrac >= 1 {
		t.Fatalf("implausible model: %+v", hr)
	}
	for _, row := range hr.Results {
		if row.PerRotOpsPerSec <= 0 || row.HoistedOpsPerSec <= 0 || row.MeasuredSpeedup <= 0 {
			t.Fatalf("implausible hoisted row %+v", row)
		}
		// The hoisted-never-loses invariant is gated by perfgate on
		// bench-scale runs; at this noise-scale configuration (N=32,
		// 2 requests) asserting it would be timing-flaky.
	}
}

func TestThroughputVerb(t *testing.T) {
	jsonPath := t.TempDir() + "/bench.json"
	args := []string{"throughput", "-dataflow", "oc", "-workers", "2",
		"-requests", "2", "-logn", "5", "-towers", "4", "-dnum", "2",
		"-json", jsonPath}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
}

// TestObservabilityFlags drives the -profile/-trace/-pprof/-dot
// wiring end to end through the CLI dispatch: the throughput report
// gains stage_shares summing near 1 on the serial row, the trace and
// pprof artifacts appear on disk, and the schedule DAG renders as DOT.
func TestObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/bench.json"
	tracePath := dir + "/trace.json"
	args := []string{"throughput", "-dataflow", "oc", "-workers", "2",
		"-requests", "2", "-logn", "5", "-towers", "4", "-dnum", "2",
		"-profile", "-trace", tracePath, "-pprof", dir + "/prof",
		"-json", jsonPath}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep throughputReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Results {
		if len(row.StageShares) == 0 {
			t.Errorf("%s row has no stage shares under -profile", row.Dataflow)
			continue
		}
		sum := obs.SumShares(row.StageShares)
		if row.Dataflow == "serial" && (sum < 0.9 || sum > 1.1) {
			t.Errorf("serial stage shares sum to %.3f, want within 10%% of 1", sum)
		}
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &tf); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
	for _, prof := range []string{"/prof/cpu.prof", "/prof/mem.prof"} {
		if _, err := os.Stat(dir + prof); err != nil {
			t.Errorf("pprof artifact missing: %v", err)
		}
	}

	dotPath := dir + "/sched.dot"
	if err := run([]string{"schedule", "-workload", "pir", "-requests", "2",
		"-rotations", "4", "-dot", dotPath}); err != nil {
		t.Fatal(err)
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatalf("DOT not written: %v", err)
	}
	if !strings.Contains(string(dot), "digraph") || !strings.Contains(string(dot), "->") {
		t.Error("DOT output has no digraph/edges")
	}
}

func TestThroughputErrors(t *testing.T) {
	for _, args := range [][]string{
		{"throughput", "-dataflow", "nope", "-logn", "5"},
		{"throughput", "-requests", "0", "-logn", "5"},
		{"throughput", "-logn", "3"},
		{"throughput", "-logn", "5", "-towers", "4", "-dnum", "9"},
		{"throughput", "-logn", "5", "-towers", "4", "-dnum", "2", "-hoisted", "-rotations", "1"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func writeReport(t *testing.T, path string, rep *throughputReport) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPerfgate(t *testing.T) {
	dir := t.TempDir()
	base := &throughputReport{
		BitExact: true,
		Results: []throughputRow{
			{Dataflow: "serial", OpsPerSec: 100},
			{Dataflow: "MP", OpsPerSec: 120},
		},
	}
	basePath := dir + "/base.json"
	writeReport(t, basePath, base)

	// Within tolerance (half the baseline exactly is still allowed at 2.01x).
	ok := &throughputReport{
		BitExact: true,
		Results: []throughputRow{
			{Dataflow: "serial", OpsPerSec: 51},
			{Dataflow: "MP", OpsPerSec: 300},
			{Dataflow: "OC", OpsPerSec: 10}, // new dataflow: no baseline, no gate
		},
		Hoisted: &hoistedReport{BitExact: true, ModelSpeedup: 1.4,
			Results: []hoistedRow{{Dataflow: "MP", MeasuredSpeedup: 1.2}}},
	}
	okPath := dir + "/ok.json"
	writeReport(t, okPath, ok)
	if err := perfgatePaths(basePath, okPath, 2, "", "", "", "", "", ""); err != nil {
		t.Fatalf("perfgate failed on healthy report: %v", err)
	}

	// Gross regression on one dataflow.
	bad := &throughputReport{
		BitExact: true,
		Results: []throughputRow{
			{Dataflow: "serial", OpsPerSec: 99},
			{Dataflow: "MP", OpsPerSec: 10},
		},
	}
	badPath := dir + "/bad.json"
	writeReport(t, badPath, bad)
	if err := perfgatePaths(basePath, badPath, 2, "", "", "", "", "", ""); err == nil {
		t.Fatal("perfgate passed a >2x regression")
	}

	// Hoisting losing to per-rotation must fail regardless of speed.
	slowHoist := &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 200}},
		Hoisted: &hoistedReport{BitExact: true, ModelSpeedup: 1.4,
			Results: []hoistedRow{{Dataflow: "serial", MeasuredSpeedup: 0.9}}},
	}
	slowPath := dir + "/slow.json"
	writeReport(t, slowPath, slowHoist)
	if err := perfgatePaths(basePath, slowPath, 2, "", "", "", "", "", ""); err == nil {
		t.Fatal("perfgate passed a hoisted slowdown")
	}

	// A baseline with a hoisted section pins it in the fresh report.
	hoistedBase := &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 100}},
		Hoisted: &hoistedReport{BitExact: true, ModelSpeedup: 1.4,
			Results: []hoistedRow{{Dataflow: "serial", MeasuredSpeedup: 1.5}}},
	}
	hoistedBasePath := dir + "/hoisted_base.json"
	writeReport(t, hoistedBasePath, hoistedBase)
	noHoist := &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 100}},
	}
	noHoistPath := dir + "/no_hoist.json"
	writeReport(t, noHoistPath, noHoist)
	if err := perfgatePaths(hoistedBasePath, noHoistPath, 2, "", "", "", "", "", ""); err == nil {
		t.Fatal("perfgate passed a fresh report that dropped the hoisted section")
	}

	// Non-bit-exact fresh reports are rejected outright.
	inexact := &throughputReport{
		Results: []throughputRow{{Dataflow: "serial", OpsPerSec: 500}},
	}
	inexactPath := dir + "/inexact.json"
	writeReport(t, inexactPath, inexact)
	if err := perfgatePaths(basePath, inexactPath, 2, "", "", "", "", "", ""); err == nil {
		t.Fatal("perfgate passed a non-bit-exact report")
	}
}

func TestPerfgateStageShares(t *testing.T) {
	dir := t.TempDir()
	shares := func(sum float64) []obs.StageShare {
		return []obs.StageShare{
			{Stage: "mod_up", Share: sum / 2},
			{Stage: "mod_down", Share: sum / 2},
		}
	}
	profiled := func(serialSum, mpSum float64) *throughputReport {
		return &throughputReport{
			BitExact: true, Workers: 2,
			Results: []throughputRow{
				{Dataflow: "serial", OpsPerSec: 100, StageShares: shares(serialSum)},
				{Dataflow: "MP", OpsPerSec: 120, StageShares: shares(mpSum)},
			},
		}
	}
	basePath := dir + "/base.json"
	writeReport(t, basePath, profiled(1.0, 1.8))

	// A healthy profiled report: serial sums to ~1, MP within workers+2.
	okPath := dir + "/ok.json"
	writeReport(t, okPath, profiled(0.95, 2.1))
	if err := perfgatePaths(basePath, okPath, 2, "", "", "", "", "", ""); err != nil {
		t.Fatalf("perfgate failed on healthy stage shares: %v", err)
	}

	// The serial row's shares must tile the wall clock within 10%.
	for _, sum := range []float64{0.5, 1.3} {
		p := dir + "/serial_off.json"
		writeReport(t, p, profiled(sum, 1.8))
		if err := perfgatePaths(basePath, p, 2, "", "", "", "", "", ""); err == nil {
			t.Errorf("perfgate passed a serial share sum of %.1f", sum)
		}
	}

	// Engine rows are bounded by workers+2.
	highMP := dir + "/high_mp.json"
	writeReport(t, highMP, profiled(1.0, 9.0))
	if err := perfgatePaths(basePath, highMP, 2, "", "", "", "", "", ""); err == nil {
		t.Error("perfgate passed an MP share sum of 9.0 at 2 workers")
	}

	// A profiled baseline pins the profile in the fresh report.
	bare := &throughputReport{
		BitExact: true, Workers: 2,
		Results: []throughputRow{
			{Dataflow: "serial", OpsPerSec: 100},
			{Dataflow: "MP", OpsPerSec: 120},
		},
	}
	barePath := dir + "/bare.json"
	writeReport(t, barePath, bare)
	if err := perfgatePaths(basePath, barePath, 2, "", "", "", "", "", ""); err == nil {
		t.Error("perfgate passed a fresh report that dropped its stage shares")
	}
	// ...but an unprofiled baseline does not demand one.
	if err := perfgatePaths(barePath, barePath, 2, "", "", "", "", "", ""); err != nil {
		t.Errorf("perfgate failed on an unprofiled pair: %v", err)
	}
}

func TestPerfgateErrors(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/good.json"
	writeReport(t, good, &throughputReport{BitExact: true,
		Results: []throughputRow{{Dataflow: "serial", OpsPerSec: 1}}})
	if err := perfgatePaths(dir+"/missing.json", good, 2, "", "", "", "", "", ""); err == nil {
		t.Error("missing baseline accepted")
	}
	if err := perfgatePaths(good, dir+"/missing.json", 2, "", "", "", "", "", ""); err == nil {
		t.Error("missing fresh report accepted")
	}
	if err := perfgatePaths(good, good, 0.5, "", "", "", "", "", ""); err == nil {
		t.Error("tolerance below 1 accepted")
	}
	empty := dir + "/empty.json"
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := perfgatePaths(empty, good, 2, "", "", "", "", "", ""); err == nil {
		t.Error("empty baseline accepted")
	}
}

func testServeConfig() serveConfig {
	return serveConfig{
		dfName: "all", clients: 2, rotations: 3, ops: 2,
		logN: 5, towers: 4, dnum: 2, workers: 2,
		tenants: 1, levels: 1,
		maxBatch: 16, window: 200 * time.Microsecond,
	}
}

func TestServeRun(t *testing.T) {
	rep, err := serveRun(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitExact {
		t.Fatal("served results not bit-exact with direct SwitchHoisted")
	}
	// 2 clients x 2 ops x 3 rotations; the verification fan-out runs
	// after the stats snapshot and does not count.
	if want := uint64(2 * 2 * 3); rep.Requests != want {
		t.Fatalf("served %d requests, want %d", rep.Requests, want)
	}
	if rep.CoalescingFactor <= 1 {
		t.Fatalf("coalescing factor %.2f, want > 1", rep.CoalescingFactor)
	}
	if rep.KeyHitRate <= 0.5 {
		t.Fatalf("key hit rate %.2f, want > 0.5", rep.KeyHitRate)
	}
	if rep.OpsPerSec <= 0 || rep.P50Ms < 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("implausible report %+v", rep)
	}
	if rep.KeyBudget <= 0 || rep.KeyBytes <= 0 || rep.KeyBytes > rep.KeyBudget {
		t.Fatalf("implausible key residency: %d of %d bytes", rep.KeyBytes, rep.KeyBudget)
	}
	if err := serveCheck(rep); err != nil {
		t.Fatal(err)
	}
}

// TestServeRunMultiTenant drives the full (tenant, level) matrix and
// checks the keyspace invariants the perf gate relies on: per-tenant
// breakdowns present and healthy, ModUps never shared across tenants,
// resident key bytes within the explicit budget.
func TestServeRunMultiTenant(t *testing.T) {
	cfg := testServeConfig()
	cfg.clients, cfg.tenants, cfg.levels = 4, 2, 2
	// Each (tenant, level) cell gets one client; 4 ops over a pool of
	// 3 rotations leave every cell's steady-state hit rate above 50%.
	cfg.ops = 4
	cfg.keyBudget = 64 << 20
	rep, err := serveRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitExact {
		t.Fatal("multi-tenant serve not bit-exact with per-keyspace SwitchHoisted")
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("%d tenant reports, want 2", len(rep.Tenants))
	}
	if rep.KeyBudget != cfg.keyBudget {
		t.Fatalf("reported budget %d, want the explicit %d", rep.KeyBudget, cfg.keyBudget)
	}
	var modUps uint64
	for _, ts := range rep.Tenants {
		if ts.Served == 0 {
			t.Fatalf("tenant %s served nothing", ts.Tenant)
		}
		if ts.KeyHitRate <= 0.5 {
			t.Fatalf("tenant %s hit rate %.2f, want > 0.5", ts.Tenant, ts.KeyHitRate)
		}
		modUps += ts.ModUps
	}
	if modUps != rep.ModUps {
		t.Fatalf("per-tenant ModUps sum %d != global %d: groups crossed tenants", modUps, rep.ModUps)
	}
	if err := serveCheck(rep); err != nil {
		t.Fatal(err)
	}
}

func TestServeRunPaced(t *testing.T) {
	cfg := testServeConfig()
	cfg.clients, cfg.ops, cfg.rps = 1, 2, 500
	rep, err := serveRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two ops at 500 ops/sec cannot finish faster than one tick.
	if rep.DurationSec < 0.002 {
		t.Fatalf("paced run finished in %.4fs, pacing not applied", rep.DurationSec)
	}
}

func TestServeRunErrors(t *testing.T) {
	for name, mut := range map[string]func(*serveConfig){
		"clients":     func(c *serveConfig) { c.clients = 0 },
		"ops":         func(c *serveConfig) { c.ops = 0 },
		"rot":         func(c *serveConfig) { c.rotations = 0 },
		"rps":         func(c *serveConfig) { c.rps = -1 },
		"logn":        func(c *serveConfig) { c.logN = 3 },
		"rotpool":     func(c *serveConfig) { c.rotPool = 1 },
		"dataflow":    func(c *serveConfig) { c.dfName = "nope" },
		"tenants":     func(c *serveConfig) { c.tenants = 0 },
		"levels":      func(c *serveConfig) { c.levels = 0 },
		"levels-high": func(c *serveConfig) { c.levels = c.towers },
		"matrix":      func(c *serveConfig) { c.tenants = 4 }, // 2 clients < 4x1 matrix
		"budget":      func(c *serveConfig) { c.keyBudget = -1 },
	} {
		cfg := testServeConfig()
		mut(&cfg)
		if _, err := serveRun(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestServeVerb(t *testing.T) {
	jsonPath := t.TempDir() + "/serve.json"
	args := []string{"serve", "-clients", "2", "-rotations", "3", "-requests", "2",
		"-logn", "5", "-towers", "4", "-dnum", "2", "-workers", "2",
		"-check", "-json", jsonPath}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || !rep.BitExact {
		t.Fatalf("implausible serve report: %+v", rep)
	}
}

func writeServeReport(t *testing.T, path string, rep *serveReport) {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPerfgateServe(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/thr_base.json"
	writeReport(t, basePath, &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 100}},
	})
	freshPath := dir + "/thr_fresh.json"
	writeReport(t, freshPath, &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 100}},
	})

	healthy := &serveReport{
		Requests: 64, OpsPerSec: 100, CoalescingFactor: 4,
		KeyHitRate: 0.9, BitExact: true,
	}
	sBase := dir + "/serve_base.json"
	writeServeReport(t, sBase, healthy)
	sOK := dir + "/serve_ok.json"
	writeServeReport(t, sOK, &serveReport{
		Requests: 64, OpsPerSec: 51, CoalescingFactor: 2,
		KeyHitRate: 0.6, BitExact: true,
	})
	if err := perfgatePaths(basePath, freshPath, 2, sBase, sOK, "", "", "", ""); err != nil {
		t.Fatalf("perfgate failed on healthy serve report: %v", err)
	}

	healthyTenants := []serveTenantReport{
		{Tenant: "t0", Served: 32, ModUps: 4, KeyHitRate: 0.9},
		{Tenant: "t1", Served: 32, ModUps: 4, KeyHitRate: 0.9},
	}
	for name, bad := range map[string]*serveReport{
		"regression":    {Requests: 64, OpsPerSec: 10, CoalescingFactor: 4, KeyHitRate: 0.9, BitExact: true},
		"no-coalescing": {Requests: 64, OpsPerSec: 100, CoalescingFactor: 1, KeyHitRate: 0.9, BitExact: true},
		"cold-cache":    {Requests: 64, OpsPerSec: 100, CoalescingFactor: 4, KeyHitRate: 0.3, BitExact: true},
		"inexact":       {Requests: 64, OpsPerSec: 100, CoalescingFactor: 4, KeyHitRate: 0.9, BitExact: false},
		"over-budget": {Requests: 64, OpsPerSec: 100, CoalescingFactor: 4, KeyHitRate: 0.9, BitExact: true,
			KeyBudget: 100, KeyBytes: 101},
		"tenant-cold": {Requests: 64, OpsPerSec: 100, CoalescingFactor: 4, KeyHitRate: 0.9, BitExact: true,
			Tenants: []serveTenantReport{{Tenant: "t0", Served: 64, ModUps: 8, KeyHitRate: 0.2}}},
		"tenant-starved": {Requests: 64, OpsPerSec: 100, CoalescingFactor: 4, KeyHitRate: 0.9, BitExact: true,
			Tenants: []serveTenantReport{{Tenant: "t0", Served: 64, ModUps: 8, KeyHitRate: 0.9}, {Tenant: "t1", KeyHitRate: 0.9}}},
		"cross-tenant-coalesce": {Requests: 64, OpsPerSec: 100, CoalescingFactor: 4, ModUps: 8, KeyHitRate: 0.9, BitExact: true,
			Tenants: healthyTenants[:1]},
	} {
		p := dir + "/serve_" + name + ".json"
		writeServeReport(t, p, bad)
		if err := perfgatePaths(basePath, freshPath, 2, sBase, p, "", "", "", ""); err == nil {
			t.Errorf("%s: perfgate passed a degraded serve report", name)
		}
	}

	// A baseline with per-tenant stats pins them in the fresh report.
	tenantBase := dir + "/serve_tenant_base.json"
	writeServeReport(t, tenantBase, &serveReport{
		Requests: 64, OpsPerSec: 100, CoalescingFactor: 4, ModUps: 8,
		KeyHitRate: 0.9, BitExact: true, Tenants: healthyTenants,
	})
	if err := perfgatePaths(basePath, freshPath, 2, tenantBase, sOK, "", "", "", ""); err == nil {
		t.Error("perfgate passed a fresh report that dropped the tenant stats")
	}
	tenantOK := dir + "/serve_tenant_ok.json"
	writeServeReport(t, tenantOK, &serveReport{
		Requests: 64, OpsPerSec: 90, CoalescingFactor: 4, ModUps: 8,
		KeyHitRate: 0.9, BitExact: true, KeyBudget: 100, KeyBytes: 80,
		Tenants: healthyTenants,
	})
	if err := perfgatePaths(basePath, freshPath, 2, tenantBase, tenantOK, "", "", "", ""); err != nil {
		t.Errorf("perfgate failed a healthy multi-tenant report: %v", err)
	}
	// Shrinking the tenant matrix (2 -> 1) must fail the pinning check
	// even though the one remaining tenant looks healthy.
	shrunk := dir + "/serve_tenant_shrunk.json"
	writeServeReport(t, shrunk, &serveReport{
		Requests: 64, OpsPerSec: 90, CoalescingFactor: 4, ModUps: 4,
		KeyHitRate: 0.9, BitExact: true, Tenants: healthyTenants[:1],
	})
	if err := perfgatePaths(basePath, freshPath, 2, tenantBase, shrunk, "", "", "", ""); err == nil {
		t.Error("perfgate passed a fresh report with a shrunken tenant matrix")
	}

	// Half-specified serve gate flags and unreadable reports error out.
	if err := perfgatePaths(basePath, freshPath, 2, sBase, "", "", "", "", ""); err == nil {
		t.Error("half-specified serve gate accepted")
	}
	if err := perfgatePaths(basePath, freshPath, 2, sBase, dir+"/missing.json", "", "", "", ""); err == nil {
		t.Error("missing fresh serve report accepted")
	}
	if err := perfgatePaths(basePath, freshPath, 2, dir+"/missing.json", sOK, "", "", "", ""); err == nil {
		t.Error("missing serve baseline accepted")
	}
	empty := dir + "/serve_empty.json"
	writeServeReport(t, empty, &serveReport{})
	if err := perfgatePaths(basePath, freshPath, 2, empty, sOK, "", "", "", ""); err == nil {
		t.Error("empty serve baseline accepted")
	}
}

func testWorkloadConfig() workloadConfig {
	return workloadConfig{
		workload: "bootstrap", bts: 2, dfName: "all",
		logN: 5, towers: 4, workers: 2,
	}
}

// TestWorkloadRunBootstrap replays a tiny BTS-shaped bootstrap
// schedule and checks the tentpole invariant: the measured serve
// counters equal the schedule DAG's predictions exactly, the replay
// is bit-exact with serial execution, and the hoist groups coalesced.
func TestWorkloadRunBootstrap(t *testing.T) {
	rep, err := workloadRun(testWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dnum != 2 {
		t.Fatalf("dnum %d: -workload bootstrap -bts 2 must inherit BTS2's digit count", rep.Dnum)
	}
	if rep.Dataflow != "MP" {
		t.Fatalf("dataflow %q: -dataflow all must select MP for replay", rep.Dataflow)
	}
	p := rep.Predicted
	if rep.Served != uint64(p.Switches) || rep.ModUps != uint64(p.ModUps) ||
		rep.Coalesced != uint64(p.Coalesced) {
		t.Fatalf("measured (%d, %d, %d) != predicted (%d, %d, %d)",
			rep.Served, rep.ModUps, rep.Coalesced, p.Switches, p.ModUps, p.Coalesced)
	}
	if p.Relins != 1 || p.Depth < 3 {
		t.Fatalf("bootstrap schedule shape implausible: %+v", p)
	}
	if err := workloadCheck(rep); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadRunMatvec(t *testing.T) {
	cfg := testWorkloadConfig()
	cfg.workload, cfg.rotations, cfg.giants = "matvec", 4, 3
	cfg.dfName, cfg.dnum = "oc", 2
	rep, err := workloadRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 babies + 2 giants; 1 baby ModUp + 2 giant ModUps.
	if rep.Served != 5 || rep.ModUps != 3 || rep.Coalesced != 3 {
		t.Fatalf("matvec counters: %+v", rep)
	}
	if err := workloadCheck(rep); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadCheckRejects(t *testing.T) {
	good, err := workloadRun(testWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*workloadReport){
		"inexact":    func(r *workloadReport) { r.BitExact = false },
		"drift":      func(r *workloadReport) { r.CountsExact = false },
		"dep-order":  func(r *workloadReport) { r.DepViolations = 1 },
		"no-coalesc": func(r *workloadReport) { r.HoistCoalescingFactor = 1 },
	} {
		rep := *good
		mut(&rep)
		if workloadCheck(&rep) == nil {
			t.Errorf("%s: degraded workload report accepted", name)
		}
	}
	// The coalescing-factor check only applies to schedules with
	// hoistable fan-out: an honest evalmod-style report (zero hoist
	// groups, nothing coalesced) must pass, not trip the factor gate.
	chain := *good
	chain.Predicted.HoistGroups = 0
	chain.Predicted.Coalesced = 0
	chain.HoistCoalescingFactor = 0
	if err := workloadCheck(&chain); err != nil {
		t.Errorf("hoist-free report rejected: %v", err)
	}
}

func TestWorkloadRunErrors(t *testing.T) {
	for name, mut := range map[string]func(*workloadConfig){
		"workload": func(c *workloadConfig) { c.workload = "nope" },
		"bts":      func(c *workloadConfig) { c.bts = 9 },
		"logn":     func(c *workloadConfig) { c.logN = 3 },
		"radix":    func(c *workloadConfig) { c.radix = 3 },
		"dnum":     func(c *workloadConfig) { c.dnum = 9 },
		"dataflow": func(c *workloadConfig) { c.dfName = "nope" },
		"matvec-n1": func(c *workloadConfig) {
			c.workload, c.rotations, c.giants = "matvec", 1, 2
		},
	} {
		cfg := testWorkloadConfig()
		mut(&cfg)
		if _, err := workloadRun(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestServeWorkloadVerb(t *testing.T) {
	jsonPath := t.TempDir() + "/workload.json"
	args := []string{"serve", "-workload", "bootstrap", "-bts", "1",
		"-logn", "5", "-towers", "4", "-workers", "2",
		"-check", "-json", jsonPath}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	var rep workloadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Served == 0 || !rep.BitExact || !rep.CountsExact || rep.BTS != 1 {
		t.Fatalf("implausible workload report: %+v", rep)
	}
	// BTS1 has dnum 1; with 4 towers over 3 P moduli the inherited
	// digit count is raised to 2 so ModUp's digits stay coverable.
	if rep.Dnum != 2 {
		t.Fatalf("dnum %d, want BTS1's 1 clamped to 2", rep.Dnum)
	}
	// An explicit -dnum wins over the BTS set (matvec stays at the
	// top level, where 3 digits over 5 towers are valid).
	args = []string{"serve", "-workload", "matvec", "-bts", "1", "-dnum", "3",
		"-rotations", "4", "-requests", "3",
		"-logn", "5", "-towers", "5", "-workers", "2", "-json", jsonPath}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Dnum != 3 {
		t.Fatalf("dnum %d, want the explicit 3", rep.Dnum)
	}
}

func TestScheduleVerb(t *testing.T) {
	jsonPath := t.TempDir() + "/schedule.json"
	for _, args := range [][]string{
		{"schedule", "-workload", "bootstrap", "-bts", "2", "-json", jsonPath},
		{"schedule", "-workload", "matvec", "-rotations", "8", "-requests", "4"},
		{"schedule", "-workload", "fanout"},
		{"schedule", "-workload", "bootstrap", "-bts", "3", "-radix", "16"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	var rep scheduleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Bench != "BTS2" || rep.Counts.Switches == 0 || len(rep.Estimates) != 3 {
		t.Fatalf("implausible schedule report: %+v", rep)
	}
	// The estimate prices the DAG's hoist groups: the hoisted total
	// must undercut the plain one.
	for _, e := range rep.Estimates {
		if e.HoistSavedModUps == 0 || !(e.HoistedTotalSec < e.TotalSec) {
			t.Fatalf("estimate did not price shared ModUps: %+v", e)
		}
	}
}

func TestScheduleVerbErrors(t *testing.T) {
	for _, args := range [][]string{
		{"schedule", "-workload", "nope"},
		{"schedule", "-bts", "7"},
		{"schedule", "-workload", "bootstrap", "-radix", "5"},
		{"schedule", "-workload", "matvec", "-rotations", "1"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func writeWorkloadReport(t *testing.T, path string, rep *workloadReport) {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPerfgateWorkload(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/thr_base.json"
	writeReport(t, basePath, &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 100}},
	})

	healthy := func() *workloadReport {
		rep := &workloadReport{
			Schedule: "bootstrap", OpsPerSec: 100,
			Served: 73, ModUps: 33, Coalesced: 44,
			CountsExact: true, BitExact: true,
			HoistCoalescingFactor: 11,
		}
		rep.Predicted.Switches = 73
		rep.Predicted.ModUps = 33
		rep.Predicted.HoistGroups = 4
		rep.Predicted.Depth = 9
		return rep
	}
	wBase := dir + "/workload_base.json"
	writeWorkloadReport(t, wBase, healthy())
	wOK := dir + "/workload_ok.json"
	ok := healthy()
	ok.OpsPerSec = 51
	writeWorkloadReport(t, wOK, ok)
	if err := perfgatePaths(basePath, basePath, 2, "", "", wBase, wOK, "", ""); err != nil {
		t.Fatalf("perfgate failed on a healthy workload report: %v", err)
	}

	for name, mut := range map[string]func(*workloadReport){
		"regression": func(r *workloadReport) { r.OpsPerSec = 10 },
		"inexact":    func(r *workloadReport) { r.BitExact = false },
		"drift": func(r *workloadReport) {
			r.CountsExact = false
			r.Mismatches = []string{"mod_ups: measured 34, schedule predicts 33"}
		},
		"dep-order": func(r *workloadReport) { r.DepViolations = 2 },
		"no-hoist":  func(r *workloadReport) { r.Predicted.HoistGroups = 0 },
		"no-coalescing": func(r *workloadReport) {
			r.HoistCoalescingFactor = 1
		},
		// The baseline pins the schedule shape: a smaller, flatter,
		// or shallower fresh schedule must fail even when its own
		// internal invariants hold.
		"shrunk-schedule": func(r *workloadReport) { r.Predicted.Switches = 10 },
		"flat-schedule":   func(r *workloadReport) { r.Predicted.HoistGroups = 2 },
		"shallow-schedule": func(r *workloadReport) {
			r.Predicted.Depth = 1
		},
	} {
		bad := healthy()
		mut(bad)
		p := dir + "/workload_" + name + ".json"
		writeWorkloadReport(t, p, bad)
		if err := perfgatePaths(basePath, basePath, 2, "", "", wBase, p, "", ""); err == nil {
			t.Errorf("%s: perfgate passed a degraded workload report", name)
		}
	}

	// Half-specified flags, unreadable and empty reports error out.
	if err := perfgatePaths(basePath, basePath, 2, "", "", wBase, "", "", ""); err == nil {
		t.Error("half-specified workload gate accepted")
	}
	if err := perfgatePaths(basePath, basePath, 2, "", "", wBase, dir+"/missing.json", "", ""); err == nil {
		t.Error("missing fresh workload report accepted")
	}
	if err := perfgatePaths(basePath, basePath, 2, "", "", dir+"/missing.json", wOK, "", ""); err == nil {
		t.Error("missing workload baseline accepted")
	}
	empty := dir + "/workload_empty.json"
	writeWorkloadReport(t, empty, &workloadReport{})
	if err := perfgatePaths(basePath, basePath, 2, "", "", empty, wOK, "", ""); err == nil {
		t.Error("empty workload baseline accepted")
	}
}

// TestHelpMatchesREADME diffs the `ciflow help` output against
// README.md and the package doc comment: every experiment and every
// flag the binary defines must be documented in both, so the CLI and
// the docs cannot drift apart.
func TestHelpMatchesREADME(t *testing.T) {
	var buf bytes.Buffer
	usage(&buf, newFlags())
	help := buf.String()

	readmeBytes, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(readmeBytes)
	mainBytes, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	docComment := string(mainBytes)

	// Word-boundary match: a bare substring check would let "-fresh"
	// ride on "-serve-fresh" and hide real docs drift.
	mentions := func(text, flagName string) bool {
		re := regexp.MustCompile(`(^|[^-\w])-` + regexp.QuoteMeta(flagName) + `\b`)
		return re.MatchString(text)
	}
	fl := newFlags()
	fl.fs.VisitAll(func(f *flag.Flag) {
		if !mentions(help, f.Name) {
			t.Errorf("flag -%s missing from ciflow help output", f.Name)
		}
		if !mentions(readme, f.Name) {
			t.Errorf("flag -%s not documented in README.md", f.Name)
		}
		if !mentions(docComment, f.Name) {
			t.Errorf("flag -%s not documented in the main.go doc comment", f.Name)
		}
	})
	for _, e := range experiments {
		if !strings.Contains(help, e.name) {
			t.Errorf("experiment %q missing from ciflow help output", e.name)
		}
		if !strings.Contains(readme, e.name) {
			t.Errorf("experiment %q not documented in README.md", e.name)
		}
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("ciflow help: %v", err)
	}
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("ciflow -h: %v", err)
	}
}

// perfgatePaths adapts the historical positional call sites of these
// tests to perfgateConfig; the order mirrors the gate's layer order
// (throughput, serve, workload, cluster). The scenario pair reuses the
// workload gate and is exercised directly in TestPerfgateScenario.
func perfgatePaths(base, fresh string, maxReg float64, sBase, sFresh, wBase, wFresh, cBase, cFresh string) error {
	return perfgate(perfgateConfig{
		Baseline: base, Fresh: fresh, MaxRegression: maxReg,
		ServeBaseline: sBase, ServeFresh: sFresh,
		WorkloadBaseline: wBase, WorkloadFresh: wFresh,
		ClusterBaseline: cBase, ClusterFresh: cFresh,
	})
}
