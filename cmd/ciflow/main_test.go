package main

import (
	"os"
	"testing"
)

func TestRunVerbs(t *testing.T) {
	// Fast verbs run end to end; slower sweeps are covered by the
	// analysis package's own tests.
	for _, args := range [][]string{
		{"table3"},
		{"table2"},
		{"area"},
		{"ablate-keycomp"},
		{"memory", "-bench", "ARK"},
		{"table2", "-csv"},
		{"fig4", "-bench", "DPRIVE"},
		{"fig4", "-bench", "DPRIVE", "-csv"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"fig4", "-bench", "NOPE"},
		{"table2", "-mem", "1"}, // far below any benchmark's minimum
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestThroughputRun(t *testing.T) {
	// Tiny configuration keeps this a smoke test; the hks package
	// owns the exhaustive bit-exactness matrix.
	rep, err := throughputRun("all", 2, 2, 5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitExact {
		t.Fatal("engine output not bit-exact with serial")
	}
	if len(rep.Results) != 4 { // serial + MP + DC + OC
		t.Fatalf("got %d result rows, want 4", len(rep.Results))
	}
	for _, row := range rep.Results {
		if row.OpsPerSec <= 0 || row.P50Ms < 0 || row.P99Ms < row.P50Ms {
			t.Fatalf("implausible row %+v", row)
		}
	}
}

func TestThroughputVerb(t *testing.T) {
	jsonPath := t.TempDir() + "/bench.json"
	args := []string{"throughput", "-dataflow", "oc", "-workers", "2",
		"-requests", "2", "-logn", "5", "-towers", "4", "-dnum", "2",
		"-json", jsonPath}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
}

func TestThroughputErrors(t *testing.T) {
	for _, args := range [][]string{
		{"throughput", "-dataflow", "nope", "-logn", "5"},
		{"throughput", "-requests", "0", "-logn", "5"},
		{"throughput", "-logn", "3"},
		{"throughput", "-logn", "5", "-towers", "4", "-dnum", "9"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
