package main

// The workload replay half of the serve experiment: `ciflow serve
// -workload bootstrap|matvec|pir|private-inference|evalmod` generates
// a schedule DAG (internal/workload), and `-workload file:<path>`
// imports one from a versioned JSON schedule file; either way the
// dependency-aware client replays it against the serve service,
// instead of the independent fan-out bursts of the default load
// generator (-workload fanout). This is
// the regime where coalescing competes with dependency stalls: a
// bootstrapping stage's baby rotations coalesce onto one hoisted
// ModUp while its giant rotations and the next stage must wait for
// results. The report cross-validates the measured serve.Stats deltas
// against the schedule's predicted counts — they must match exactly —
// and -check turns that, bit-exact replay, dependency order, and
// hoist-group coalescing into an exit code (the workload-smoke CI job
// and the perf gate consume it as BENCH_workload.json).

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/engine"
	"ciflow/internal/serve"
	"ciflow/internal/workload"
)

// workloadConfig is the parsed flag set of a schedule replay.
type workloadConfig struct {
	workload  string // bootstrap or matvec (fanout takes the serveRun path)
	bts       int
	radix     int
	dfName    string
	logN      int
	towers    int
	dnum      int // 0 (bootstrap only) = inherit the BTS set's digit count
	workers   int
	rotations int // matvec baby steps (n1)
	giants    int // matvec giant steps (n2); -requests
	keyBudget int64
	maxBatch  int
	window    time.Duration
}

// workloadReport is the JSON artifact of a schedule replay
// (BENCH_workload.json in the bench/perfgate flow).
type workloadReport struct {
	N        int    `json:"n"`
	Towers   int    `json:"towers"`
	Dnum     int    `json:"dnum"`
	Workers  int    `json:"workers"`
	NumCPU   int    `json:"num_cpu"`
	Dataflow string `json:"dataflow"`

	Workload string `json:"workload"`
	BTS      int    `json:"bts,omitempty"`
	Radix    int    `json:"radix"`
	Schedule string `json:"schedule"`

	Predicted workload.Counts `json:"predicted"`

	DurationSec float64 `json:"duration_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`

	Served    uint64 `json:"served"`
	ModUps    uint64 `json:"mod_ups"`
	Groups    uint64 `json:"groups"`
	Coalesced uint64 `json:"coalesced"`
	Batches   uint64 `json:"batches"`

	CountsExact           bool     `json:"counts_exact"`
	Mismatches            []string `json:"mismatches,omitempty"`
	HoistCoalescingFactor float64  `json:"hoist_coalescing_factor"`
	DepViolations         int      `json:"dep_violations"`
	BitExact              bool     `json:"bit_exact"`

	KeyHitRate   float64 `json:"key_hit_rate"`
	KeyMisses    uint64  `json:"key_misses"`
	KeyEvictions uint64  `json:"key_evictions"`
	KeyBytes     int64   `json:"key_resident_bytes"`
	KeyBudget    int64   `json:"key_budget_bytes"`
}

// workloadSchedule generates the replay schedule for a configuration:
// bootstrap scales the BTS construction onto the replay ring (the
// slot count and level budget of -logn/-towers, the digit structure
// of the -bts set), matvec is one BSGS diagonal product at the top
// level, pir/private-inference/evalmod are the library shapes scaled
// to the ring's level budget, and file:<path> imports a versioned
// JSON schedule (fully re-validated, and rejected with a precise
// error if it needs more levels than the ring has).
func workloadSchedule(cfg workloadConfig, maxLevel int) (*workload.Schedule, error) {
	if path, ok := strings.CutPrefix(cfg.workload, "file:"); ok {
		s, err := workload.ImportFile(path)
		if err != nil {
			return nil, err
		}
		for _, n := range s.Nodes {
			if n.Level > maxLevel {
				return nil, fmt.Errorf("schedule %s: node %d runs at level %d but the replay ring tops out at level %d (raise -towers)",
					s.Name, n.ID, n.Level, maxLevel)
			}
		}
		return s, nil
	}
	switch cfg.workload {
	case "bootstrap":
		return workload.Bootstrap(workload.BootstrapParams{
			LogSlots: cfg.logN - 1,
			Radix:    cfg.radix,
			Top:      maxLevel,
			Bottom:   0,
		})
	case "matvec":
		return workload.Matvec(cfg.rotations, cfg.giants, maxLevel)
	case "pir":
		return workload.PIR(cfg.giants, cfg.rotations, maxLevel)
	case "private-inference":
		return workload.PrivateInference((maxLevel+1)/2, cfg.rotations, cfg.giants, maxLevel)
	case "evalmod":
		return workload.EvalMod(maxLevel+1, maxLevel)
	default:
		return nil, fmt.Errorf("unknown workload %q (want fanout, bootstrap, matvec, pir, private-inference, evalmod, or file:<path>)",
			cfg.workload)
	}
}

// workloadRun generates the schedule, stands up a one-tenant service
// over a fresh keyspace, and replays the DAG through it with the
// serial reference check enabled. Split from the printing so tests
// can exercise it directly.
func workloadRun(cfg workloadConfig) (*workloadReport, error) {
	if cfg.logN < 4 || cfg.logN > 16 {
		return nil, fmt.Errorf("logn %d out of range [4,16]", cfg.logN)
	}
	bts, err := workload.BTSBenchmark(cfg.bts)
	if err != nil {
		return nil, err
	}
	if cfg.dnum == 0 {
		// The BTS sets differ in level count and digit structure; the
		// level count is fixed by -towers here, so the digit count is
		// what the replay inherits from the chosen set — raised when
		// needed so no digit spans more Q towers than the replay
		// ring's three P moduli can cover in ModUp (the same K ≥ α
		// constraint the paper's parameter sets satisfy).
		cfg.dnum = bts.Dnum
		if min := (cfg.towers + 2) / 3; cfg.dnum < min {
			cfg.dnum = min
		}
	}
	if cfg.dnum > cfg.towers {
		return nil, fmt.Errorf("dnum %d exceeds %d towers", cfg.dnum, cfg.towers)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	// The replay runs one dataflow; "all" (the flag default) selects
	// MP, the paper's baseline.
	dfName := cfg.dfName
	if dfName == "all" {
		dfName = "mp"
	}
	dfs, err := parseThroughputDataflows(dfName)
	if err != nil {
		return nil, err
	}
	df := dfs[0]

	n := 1 << cfg.logN
	cctx, err := ckks.NewContext(n, cfg.towers, 40, 3, 41, cfg.dnum)
	if err != nil {
		return nil, err
	}
	sched, err := workloadSchedule(cfg, cctx.MaxLevel)
	if err != nil {
		return nil, err
	}

	const tenant = "t0"
	kc, _ := ckks.GenKeys(cctx, 1)
	chains := serve.KeyChains{tenant: kc}

	e := engine.New(cfg.workers)
	defer e.Close()
	scfg := workload.ReplayServiceConfig(sched)
	scfg.Engine = e
	scfg.KeyBudget = cfg.keyBudget
	if cfg.maxBatch > scfg.MaxBatch {
		scfg.MaxBatch = cfg.maxBatch
	}
	if cfg.window > scfg.Window {
		scfg.Window = cfg.window
	}
	svc, err := serve.New(cctx.Switchers(), chains, scfg)
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	res, err := workload.Replay(context.Background(), svc, cctx.Switchers(), chains, cctx.R,
		sched, workload.ReplayConfig{Tenant: tenant, Dataflow: df, Seed: 1, Check: true})
	if err != nil {
		return nil, err
	}

	st := svc.Stats()
	rep := &workloadReport{
		N: n, Towers: cfg.towers, Dnum: cfg.dnum,
		Workers: cfg.workers, NumCPU: runtime.NumCPU(),
		Dataflow: df.String(),
		Workload: cfg.workload, Radix: sched.Radix, Schedule: sched.Name,
		Predicted:   res.Predicted,
		DurationSec: res.Wall.Seconds(),
		OpsPerSec:   float64(res.Served) / res.Wall.Seconds(),
		P50Ms:       float64(st.P50) / float64(time.Millisecond),
		P99Ms:       float64(st.P99) / float64(time.Millisecond),
		Served:      res.Served, ModUps: res.ModUps, Groups: res.Groups,
		Coalesced: res.Coalesced, Batches: res.Batches,
		CountsExact:           res.CountsExact,
		Mismatches:            res.Mismatches,
		HoistCoalescingFactor: res.HoistCoalescingFactor,
		DepViolations:         res.DepViolations,
		BitExact:              res.Checked && res.BitExact,
		KeyHitRate:            st.Keys.HitRate,
		KeyMisses:             st.Keys.Misses,
		KeyEvictions:          st.Keys.Evictions,
		KeyBytes:              st.Keys.Bytes,
		KeyBudget:             st.Keys.BudgetBytes,
	}
	if cfg.workload == "bootstrap" {
		rep.BTS = cfg.bts
	}
	return rep, nil
}

// workloadCheck enforces the acceptance bar behind `serve -workload
// ... -check`: the replay must be bit-exact with serial execution of
// the same schedule, the measured counters must equal the schedule's
// predictions exactly (one ModUp per group — zero coalesces across
// chain steps, none missing inside fan-outs), dependency order must
// hold, and any hoist groups must actually coalesce (factor > 1).
// A schedule without hoistable fan-outs (evalmod's pure relin chain)
// passes on the exact counts alone — its prediction is *zero*
// coalesces, which CountsExact already enforces.
func workloadCheck(rep *workloadReport) error {
	if !rep.BitExact {
		return fmt.Errorf("workload check: replay not bit-exact with serial schedule execution")
	}
	if !rep.CountsExact {
		return fmt.Errorf("workload check: measured counters drifted from the schedule's prediction: %v",
			rep.Mismatches)
	}
	if rep.DepViolations != 0 {
		return fmt.Errorf("workload check: %d dependency-order violations", rep.DepViolations)
	}
	if rep.Predicted.HoistGroups > 0 && rep.HoistCoalescingFactor <= 1 {
		return fmt.Errorf("workload check: hoist-group coalescing factor %.2f, want > 1",
			rep.HoistCoalescingFactor)
	}
	return nil
}

func workloadCmd(cfg workloadConfig, jsonPath string, check bool) error {
	rep, err := workloadRun(cfg)
	if err != nil {
		return err
	}

	p := rep.Predicted
	fmt.Printf("Workload replay: %s (%s), N=2^%d, %d towers, dnum=%d, %d workers (%d CPUs)\n",
		rep.Schedule, rep.Dataflow, log2(rep.N), rep.Towers, rep.Dnum, rep.Workers, rep.NumCPU)
	fmt.Printf("%d switches (%d rotations, %d relins) in %d groups, depth %d, max fan-out %d, %d distinct keys\n",
		p.Switches, p.Rotations, p.Relins, p.ModUps, p.Depth, p.MaxWidth, p.DistinctKeys)
	fmt.Printf("%-26s %12.2f\n", "served switches/sec", rep.OpsPerSec)
	fmt.Printf("%-26s %9.3f ms\n", "p50 latency", rep.P50Ms)
	fmt.Printf("%-26s %9.3f ms\n", "p99 latency", rep.P99Ms)
	fmt.Printf("%-26s %12d  (predicted %d; %d without hoisting)\n",
		"ModUp executions", rep.ModUps, p.ModUps, p.ModUpsUnhoisted)
	fmt.Printf("%-26s %11.2fx  (%d coalesced over %d hoist groups)\n",
		"hoist-group coalescing", rep.HoistCoalescingFactor, rep.Coalesced, p.HoistGroups)
	fmt.Printf("%-26s %11.1f%%  (%d misses, %d evictions, %.1f MiB resident)\n",
		"key cache hit rate", 100*rep.KeyHitRate, rep.KeyMisses, rep.KeyEvictions,
		float64(rep.KeyBytes)/(1<<20))
	fmt.Printf("%-26s %12v\n", "counts exact", rep.CountsExact)
	fmt.Printf("%-26s %12v\n", "bit-exact", rep.BitExact)
	for _, m := range rep.Mismatches {
		fmt.Printf("  mismatch: %s\n", m)
	}

	if jsonPath != "" {
		if err := writeJSONReport(jsonPath, rep); err != nil {
			return err
		}
	}
	if check {
		if err := workloadCheck(rep); err != nil {
			return err
		}
		fmt.Println("workload check passed")
	}
	return nil
}

// log2 returns the exponent of a power-of-two ring degree.
func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
