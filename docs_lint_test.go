// Docs lint: the repository promises that `go doc` tells the current
// story for every package (see DESIGN.md "Testing tiers" and the CI
// docs-lint step). TestPackageComments enforces the mechanical half of
// that promise — every internal package, the root package, and
// cmd/ciflow must carry a package comment — so a new package cannot
// ship undocumented.
package ciflow_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// packageDirs returns every directory under the repository root that
// should carry a documented package: the root itself, cmd/*, and all
// of internal/*.
func packageDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	for _, root := range []string{"cmd", "internal"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			gofiles, err := filepath.Glob(filepath.Join(path, "*.go"))
			if err != nil {
				return err
			}
			if len(gofiles) > 0 {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return dirs
}

func TestPackageComments(t *testing.T) {
	for _, dir := range packageDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package comment; document what it is for", name, dir)
			}
		}
	}
}
