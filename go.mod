module ciflow

go 1.24
