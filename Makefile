# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race vet fmt bench perfgate clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then echo "files need gofmt:"; echo "$$unformatted"; exit 1; fi

# bench measures engine-backed key-switching throughput per dataflow —
# including the hoisted rotation fan-out (shared ModUp across 8 keys)
# reconciled against the HoistedOpsSaved model — and snapshots the
# report to BENCH_engine.json so the performance trajectory is tracked
# from PR to PR. Tune with e.g.
#   make bench BENCH_FLAGS="-logn 14 -requests 32 -workers 8"
BENCH_FLAGS ?= -logn 13 -requests 8

bench:
	$(GO) run ./cmd/ciflow throughput $(BENCH_FLAGS) -hoisted -rotations 8 -json BENCH_engine.json
	$(GO) test -run NONE -bench 'KeySwitchN4096|SwitchParallel|SwitchHoisted' -benchtime 2x ./internal/hks/

# perfgate compares a fresh BENCH_engine.json against a stashed
# baseline (the CI perf-regression gate): fail only on >2x ops/sec
# regressions or a hoisted path losing to per-rotation switching.
BASELINE ?= bench_baseline.json

perfgate:
	$(GO) run ./cmd/ciflow perfgate -baseline $(BASELINE) -fresh BENCH_engine.json -max-regression 2

clean:
	rm -f BENCH_engine.json bench_baseline.json
