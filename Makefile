# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race vet fmt bench perfgate clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then echo "files need gofmt:"; echo "$$unformatted"; exit 1; fi

# bench measures engine-backed key-switching throughput per dataflow —
# including the hoisted rotation fan-out (shared ModUp across 8 keys)
# reconciled against the HoistedOpsSaved model — and snapshots the
# report to BENCH_engine.json so the performance trajectory is tracked
# from PR to PR. It then drives the internal/serve multi-tenant
# service with the `ciflow serve` load generator (overlapping
# rotations from concurrent clients over a 2-tenant x 2-level
# keyspace matrix, serving seed-compressed keys at HALF the previous
# 256 MiB budget — the perfgate pins that the working set still fits
# and throughput holds) and snapshots its ops/sec, per-tenant cache
# hit rates, key-byte residency, streamed-expansion counts, and
# coalescing factor to BENCH_serve.json.
# Finally it replays a BTS2-shaped bootstrapping schedule DAG
# (CoeffToSlot/SlotToCoeff chains with hoistable fan-outs) through the
# service with the dependency-aware workload client and snapshots the
# exact-count cross-validation to BENCH_workload.json, replays the
# committed private-inference library scenario the same way from its
# golden file (the import path, exercised end to end) to
# BENCH_scenario.json, then replays the bootstrap shape across a
# sharded multi-process fabric (ciflow cluster: shard subprocesses
# behind the internal/cluster wire protocol, with replication and a
# mid-replay drain) and snapshots the shard-sum/bit-exactness
# verdicts to BENCH_cluster.json.
# The throughput, serve, and cluster legs run under -profile, so every
# snapshot carries stage_shares (internal/obs stage histograms priced
# against wall time); the perfgate pins that the serial row's shares
# keep summing to ~1, that the serve/cluster profiles stay present,
# and that the cluster's router-merged histograms equal the per-shard
# sums exactly.
# Tune with e.g.
#   make bench BENCH_FLAGS="-logn 14 -requests 32 -workers 8"
BENCH_FLAGS ?= -logn 13 -requests 8
SERVE_FLAGS ?= -logn 13 -clients 4 -rotations 8 -requests 8 -tenants 2 -levels 2 -keycomp -keybudget 134217728
WORKLOAD_FLAGS ?= -logn 13 -towers 6 -bts 2
SCENARIO_FLAGS ?= -logn 13 -towers 6 -dnum 2
CLUSTER_FLAGS ?= -logn 12 -towers 6 -bts 2 -shards 3 -tenants 4 -replicas 2 -kill

bench:
	$(GO) run ./cmd/ciflow throughput $(BENCH_FLAGS) -hoisted -rotations 8 -profile -json BENCH_engine.json
	$(GO) run ./cmd/ciflow serve $(SERVE_FLAGS) -profile -check -json BENCH_serve.json
	$(GO) run ./cmd/ciflow serve -workload bootstrap $(WORKLOAD_FLAGS) -check -json BENCH_workload.json
	$(GO) run ./cmd/ciflow serve -workload file:internal/workload/testdata/private-inference.schedule.json $(SCENARIO_FLAGS) -check -json BENCH_scenario.json
	$(GO) build -o bin/ciflow ./cmd/ciflow && bin/ciflow cluster $(CLUSTER_FLAGS) -profile -check -json BENCH_cluster.json
	$(GO) test -run NONE -bench 'KeySwitchN4096|SwitchParallel|SwitchHoisted' -benchtime 2x ./internal/hks/

# perfgate compares fresh BENCH_engine.json / BENCH_serve.json /
# BENCH_workload.json against stashed baselines (the CI perf-
# regression gate): fail only on >2x ops/sec regressions, a hoisted
# path losing to per-rotation switching, the serve invariants breaking
# (bit-exactness, coalescing > 1, global and per-tenant cache hit
# rates > 50%, resident key bytes within budget, zero cross-tenant
# coalesces, no starved tenant), or the workload invariants breaking
# (replay bit-exact with serial schedule execution, measured counters
# equal to the DAG's predictions — dependency order respected, hoist
# groups coalescing > 1, zero coalesces across chain steps; applied to
# the generated bootstrap schedule and the imported library scenario
# alike), or the
# cluster invariants breaking (per-shard stats summing exactly to
# tenants x the schedule prediction, bit-exactness over the wire,
# exact router delivery/attribution across the mid-replay drain), or
# the observability invariants breaking (serial stage shares summing
# to 1 within 10%, profiles present wherever the baseline has them,
# cluster-merged histogram buckets equal to the per-shard sums).
BASELINE ?= bench_baseline.json
SERVE_BASELINE ?= serve_baseline.json
WORKLOAD_BASELINE ?= workload_baseline.json
SCENARIO_BASELINE ?= scenario_baseline.json
CLUSTER_BASELINE ?= cluster_baseline.json

perfgate:
	$(GO) run ./cmd/ciflow perfgate -baseline $(BASELINE) -fresh BENCH_engine.json \
		-serve-baseline $(SERVE_BASELINE) -serve-fresh BENCH_serve.json \
		-workload-baseline $(WORKLOAD_BASELINE) -workload-fresh BENCH_workload.json \
		-scenario-baseline $(SCENARIO_BASELINE) -scenario-fresh BENCH_scenario.json \
		-cluster-baseline $(CLUSTER_BASELINE) -cluster-fresh BENCH_cluster.json \
		-max-regression 2

clean:
	rm -f BENCH_engine.json BENCH_serve.json BENCH_workload.json BENCH_scenario.json BENCH_cluster.json \
		bench_baseline.json serve_baseline.json workload_baseline.json scenario_baseline.json cluster_baseline.json
	rm -rf bin
