# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race vet bench clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench measures engine-backed key-switching throughput per dataflow
# and snapshots the report to BENCH_engine.json so the performance
# trajectory is tracked from PR to PR. Tune with e.g.
#   make bench BENCH_FLAGS="-logn 14 -requests 32 -workers 8"
BENCH_FLAGS ?= -logn 13 -requests 8

bench:
	$(GO) run ./cmd/ciflow throughput $(BENCH_FLAGS) -json BENCH_engine.json
	$(GO) test -run NONE -bench 'KeySwitchN4096|SwitchParallel' -benchtime 2x ./internal/hks/

clean:
	rm -f BENCH_engine.json
