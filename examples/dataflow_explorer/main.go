// Dataflow explorer: inspect what each HKS dataflow does to on-chip
// memory and DRAM traffic for any benchmark and memory size — the
// paper's Table II analysis as an interactive tool.
//
// Run with:
//
//	go run ./examples/dataflow_explorer [-bench BTS3] [-mem 32]
//	go run ./examples/dataflow_explorer -bench ARK -mem 8
package main

import (
	"flag"
	"fmt"
	"log"

	"ciflow/internal/analysis"
	"ciflow/internal/dataflow"
	"ciflow/internal/params"
	"ciflow/internal/trace"
)

func main() {
	benchName := flag.String("bench", "BTS3", "benchmark (BTS1, BTS2, BTS3, ARK, DPRIVE)")
	memMiB := flag.Int64("mem", 32, "on-chip data memory in MiB")
	flag.Parse()

	b, err := params.ByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	const mib = 1 << 20

	fmt.Printf("%s: N=2^%d, %d Q towers, %d P towers, dnum=%d (alpha=%d)\n",
		b.Name, b.LogN, b.KL, b.KP, b.Dnum, b.Alpha())
	fmt.Printf("  input %d MiB, output %d MiB, evk %d MiB, MP working set %d MiB\n",
		b.InputBytes()/mib, b.OutputBytes()/mib, b.EvkBytes()/mib, b.TempBytes()/mib)
	fmt.Printf("  weighted modular ops per key switch: %.2f G\n\n",
		float64(b.Ops().WeightedTotal())/1e9)

	fmt.Printf("On-chip data memory: %d MiB, evks streamed\n\n", *memMiB)
	fmt.Printf("%-4s %10s %10s %10s %10s %8s %7s\n",
		"", "load MiB", "store MiB", "evk MiB", "total MiB", "AI", "tasks")
	for _, df := range dataflow.AllDataflows() {
		s, err := dataflow.Generate(df, dataflow.Config{
			Bench:        b,
			DataMemBytes: *memMiB * mib,
		})
		if err != nil {
			fmt.Printf("%-4s %s\n", df, err)
			continue
		}
		st := s.Prog.Stats()
		fmt.Printf("%-4s %10.0f %10.0f %10.0f %10.0f %8.2f %7d\n",
			df,
			float64(s.Traffic.LoadBytes)/mib, float64(s.Traffic.StoreBytes)/mib,
			float64(s.Traffic.EvkBytes)/mib, float64(s.Traffic.TotalBytes())/mib,
			s.ArithmeticIntensity(), st.Tasks)
	}

	// Break the OC schedule down by pipeline stage to show where the
	// compute goes (paper Figure 1's stages).
	s, err := dataflow.Generate(dataflow.OC, dataflow.Config{Bench: b, DataMemBytes: *memMiB * mib})
	if err != nil {
		log.Fatal(err)
	}
	byStage := map[string]int64{}
	var order []string
	for _, t := range s.Prog.Tasks {
		if t.Kind != trace.Compute {
			continue
		}
		if _, seen := byStage[t.Name]; !seen {
			order = append(order, t.Name)
		}
		byStage[t.Name] += t.Ops
	}
	fmt.Printf("\nOC compute by kernel:\n")
	total := float64(b.Ops().WeightedTotal())
	for _, name := range order {
		fmt.Printf("  %-12s %6.2f Gops  (%4.1f%%)\n", name, float64(byStage[name])/1e9,
			100*float64(byStage[name])/total)
	}

	// What hoisting buys when one ciphertext feeds k rotations (the
	// diagonal method's fan-out): the key-independent ModUp runs once,
	// so its share of the compute amortizes — the executed counterpart
	// is hks.SwitchHoisted / ckks.RotateHoisted.
	fmt.Println()
	fmt.Print(analysis.FormatHoisting(b, []int{2, 4, 8, 16}))
}
