// Bandwidth planner: given a target HKS latency, find the cheapest
// hardware configuration per dataflow — the paper §VI-C trade-off
// between off-chip bandwidth, compute throughput (MODOPS), and on-chip
// SRAM (evks resident vs streamed) turned into a design tool.
//
// Run with:
//
//	go run ./examples/bandwidth_planner [-bench ARK] [-target 12]
package main

import (
	"flag"
	"fmt"
	"log"

	"ciflow/internal/analysis"
	"ciflow/internal/dataflow"
	"ciflow/internal/params"
	"ciflow/internal/rpu"
)

func main() {
	benchName := flag.String("bench", "ARK", "benchmark (BTS1, BTS2, BTS3, ARK, DPRIVE)")
	targetMS := flag.Float64("target", 12, "target HKS latency in ms")
	flag.Parse()

	b, err := params.ByName(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	r := analysis.NewRunner()

	fmt.Printf("Configurations reaching %.1f ms per key switch on %s\n", *targetMS, b.Name)
	fmt.Printf("(RPU @1.7GHz; SRAM area model: %.2f mm^2 logic + %.0f mm^2/MB)\n\n",
		rpu.LogicAreaMM2, rpu.SRAMMM2PerMB)
	fmt.Printf("%-4s %-9s %7s %10s %10s %10s\n",
		"", "evk", "MODOPS", "min BW", "SRAM MiB", "area mm^2")

	const mib = 1 << 20
	for _, df := range dataflow.AllDataflows() {
		for _, evkOnChip := range []bool{true, false} {
			sram := rpu.DataMemBytes
			evkLabel := "streamed"
			if evkOnChip {
				sram += b.EvkBytes()
				evkLabel = "on-chip"
			}
			for _, scale := range []float64{1, 2} {
				bw, err := r.FindBandwidthToMatch(df, b, evkOnChip, scale, *targetMS, 8192)
				if err != nil {
					fmt.Printf("%-4s %-9s %6.0fx %10s %10d %10.2f\n",
						df, evkLabel, scale, "unreach.", sram/mib, rpu.AreaMM2(sram))
					continue
				}
				fmt.Printf("%-4s %-9s %6.0fx %8.1fGB %10d %10.2f\n",
					df, evkLabel, scale, bw, sram/mib, rpu.AreaMM2(sram))
			}
		}
	}

	fmt.Printf("\nReading the table: the paper's §VI-B claim is visible here — streaming\n")
	fmt.Printf("evks cuts SRAM %.2fx while OC needs only modestly more bandwidth.\n",
		float64(rpu.DataMemBytes+b.EvkBytes())/float64(rpu.DataMemBytes))
}
