// Quickstart: end-to-end CKKS with hybrid key switching at
// laptop-friendly parameters. Encrypts two vectors, multiplies and
// rotates them homomorphically (each operation triggers the hybrid
// key-switching pipeline this repository analyzes), decrypts, and
// reports precision.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"ciflow/internal/ckks"
)

func main() {
	// N=2^12, 6 Q towers of 40 bits, 3 P towers, dnum=3.
	ctx, err := ckks.NewContext(1<<12, 6, 40, 3, 41, 3)
	if err != nil {
		log.Fatal(err)
	}
	enc := ckks.NewEncoder(ctx)
	keys, pk := ckks.GenKeys(ctx, 2024)
	ev := ckks.NewEvaluator(ctx, keys)

	fmt.Printf("CKKS context: N=%d, %d Q towers, %d slots, scale=2^40\n",
		ctx.R.N, ctx.MaxLevel+1, ctx.Slots())

	// Two small real vectors.
	n := 8
	a := make([]complex128, n)
	b := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(float64(i)*0.1, 0)
		b[i] = complex(1.0-float64(i)*0.05, 0)
	}

	pa, err := enc.Encode(a, ctx.MaxLevel)
	if err != nil {
		log.Fatal(err)
	}
	pb, err := enc.Encode(b, ctx.MaxLevel)
	if err != nil {
		log.Fatal(err)
	}
	ca := ev.Encrypt(pa, pk)
	cb := ev.Encrypt(pb, pk)

	// Homomorphic multiply (relinearization = one hybrid key switch).
	prod, err := ev.MulRelin(ca, cb)
	if err != nil {
		log.Fatal(err)
	}
	prod, err = ev.Rescale(prod)
	if err != nil {
		log.Fatal(err)
	}

	// Homomorphic rotation by 2 slots (another hybrid key switch).
	rot, err := ev.Rotate(prod, 2)
	if err != nil {
		log.Fatal(err)
	}

	dec := enc.Decode(ev.Decrypt(rot, keys.Secret()))
	fmt.Println("\n  i   a[i]*b[i] rotated<-2        decrypted         |error|")
	var worst float64
	for i := 0; i < n; i++ {
		// Rotation moves over all N/2 slots; slots past the encoded
		// vector hold zero padding.
		var want complex128
		if i+2 < n {
			want = a[i+2] * b[i+2]
		}
		got := dec[i]
		e := cmplx.Abs(got - want)
		if e > worst {
			worst = e
		}
		fmt.Printf("%3d   %20.6f %16.6f %15.2e\n", i, real(want), real(got), e)
	}
	fmt.Printf("\nworst-case slot error: %.2e (multiply + rotate, each via hybrid key switching)\n", worst)
}
