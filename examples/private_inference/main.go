// Private inference: an encrypted fully-connected layer, the workload
// the paper's introduction motivates. Computing y = W·x on an
// encrypted x uses the rotate-and-accumulate ("diagonal") method, so
// every matrix column costs one ciphertext rotation — and every
// rotation triggers hybrid key switching. The example measures the
// fraction of wall time spent inside key switching (the paper cites
// ~70% for ResNet-20), then evaluates the same layer with *hoisted*
// rotations — one shared Decompose+ModUp feeding every rotation key
// (Evaluator.RotateHoisted) — and compares both wall time and the
// model's predicted saving. Finally it asks the performance model
// what the rotation workload costs on the RPU under each dataflow.
//
// Run with: go run ./examples/private_inference
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"time"

	"ciflow/internal/analysis"
	"ciflow/internal/ckks"
	"ciflow/internal/dataflow"
	"ciflow/internal/params"
)

func main() {
	ctx, err := ckks.NewContext(1<<11, 5, 40, 3, 41, 2)
	if err != nil {
		log.Fatal(err)
	}
	enc := ckks.NewEncoder(ctx)
	keys, pk := ckks.GenKeys(ctx, 7)
	ev := ckks.NewEvaluator(ctx, keys)

	// A small d x d layer evaluated with the diagonal method:
	// y = sum_r diag_r(W) * rot(x, r).
	const d = 8
	var W [d][d]float64
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			W[i][j] = 0.01*float64(i+1) + 0.02*float64(j)
		}
	}
	x := make([]complex128, d)
	for i := range x {
		x[i] = complex(0.1*float64(i)-0.3, 0)
	}

	px, err := enc.Encode(replicate(x, ctx.Slots()), ctx.MaxLevel)
	if err != nil {
		log.Fatal(err)
	}
	cx := ev.Encrypt(px, pk)

	// Pre-encode the d diagonals.
	diags := make([]*ckks.Plaintext, d)
	for r := 0; r < d; r++ {
		diag := make([]complex128, ctx.Slots())
		for i := range diag {
			diag[i] = complex(W[i%d][(i+r)%d], 0)
		}
		diags[r], err = enc.Encode(diag, ctx.MaxLevel)
		if err != nil {
			log.Fatal(err)
		}
	}

	var ksTime, totalTime time.Duration
	start := time.Now()
	var acc *ckks.Ciphertext
	for r := 0; r < d; r++ {
		rotStart := time.Now()
		xr := cx
		if r != 0 {
			xr, err = ev.Rotate(cx, r) // hybrid key switching inside
			if err != nil {
				log.Fatal(err)
			}
		}
		ksTime += time.Since(rotStart)
		term := ev.MulPlain(xr, diags[r])
		if acc == nil {
			acc = term
		} else {
			acc = ev.Add(acc, term)
		}
	}
	acc, err = ev.Rescale(acc)
	if err != nil {
		log.Fatal(err)
	}
	totalTime = time.Since(start)

	dec := enc.Decode(ev.Decrypt(acc, keys.Secret()))
	worst := worstError(dec, &W, x)

	fmt.Printf("Encrypted %dx%d linear layer (diagonal method, %d rotations)\n", d, d, d-1)
	fmt.Printf("  worst-case output error:   %.2e\n", worst)
	fmt.Printf("  rotation/key-switch share: %.0f%% of %.0f ms wall time\n",
		100*float64(ksTime)/float64(totalTime), float64(totalTime.Milliseconds()))
	fmt.Printf("  (the paper reports ~70%% of ResNet-20 inference is key switching)\n\n")

	// The same layer with hoisted rotations: ct.C1 is decomposed and
	// mod-upped once, every rotation key replays only ApplyKey+ModDown.
	rots := make([]int, 0, d-1)
	for r := 1; r < d; r++ {
		rots = append(rots, r)
	}
	if _, err := keys.HoistKey(1, ctx.MaxLevel); err != nil { // warm one key off the clock
		log.Fatal(err)
	}
	hoistStart := time.Now()
	rotated, err := ev.RotateHoisted(cx, rots)
	if err != nil {
		log.Fatal(err)
	}
	accH := ev.MulPlain(cx, diags[0])
	for r := 1; r < d; r++ {
		accH = ev.Add(accH, ev.MulPlain(rotated[r-1], diags[r]))
	}
	accH, err = ev.Rescale(accH)
	if err != nil {
		log.Fatal(err)
	}
	hoistTime := time.Since(hoistStart)

	decH := enc.Decode(ev.Decrypt(accH, keys.Secret()))
	sw, err := keys.Switcher(ctx.MaxLevel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hoisted evaluation (shared ModUp across %d rotations)\n", d-1)
	fmt.Printf("  worst-case output error:   %.2e\n", worstError(decH, &W, x))
	fmt.Printf("  wall time:                 %.1f ms vs %.1f ms per-rotation (%.2fx)\n",
		float64(hoistTime.Microseconds())/1e3, float64(totalTime.Microseconds())/1e3,
		float64(totalTime)/float64(hoistTime))
	fmt.Printf("  model: saves %.1f M weighted mod ops, %.2fx predicted speedup on key switching\n\n",
		float64(sw.HoistedOpsSaved(d-1))/1e6, sw.HoistedSpeedupModel(d-1))

	// What would the rotation workload cost on the RPU? One HKS per
	// rotation at ARK-scale parameters, per dataflow, at DDR4/DDR5
	// bandwidths.
	r := analysis.NewRunner()
	rotations := 3306 // paper §I: one ResNet-20 inference
	fmt.Printf("RPU model: %d rotations (ResNet-20) at ARK parameters, evk streamed, 32MB on-chip\n", rotations)
	fmt.Printf("%10s %12s %12s %12s\n", "BW GB/s", "MP total s", "DC total s", "OC total s")
	for _, bw := range []float64{12.8, 25.6, 64} {
		var t [3]float64
		for i, df := range dataflow.AllDataflows() {
			ms, err := r.RuntimeMS(df, params.ARK, false, bw, 1)
			if err != nil {
				log.Fatal(err)
			}
			t[i] = ms * float64(rotations) / 1e3
		}
		fmt.Printf("%10.1f %12.1f %12.1f %12.1f\n", bw, t[0], t[1], t[2])
	}
}

// replicate tiles v across all slots so rotations wrap consistently.
func replicate(v []complex128, slots int) []complex128 {
	out := make([]complex128, slots)
	for i := range out {
		out[i] = v[i%len(v)]
	}
	return out
}

// worstError returns the worst-case |dec_i − (W·x)_i| over the layer.
func worstError(dec []complex128, W *[8][8]float64, x []complex128) float64 {
	var worst float64
	for i := range W {
		var want complex128
		for j := range W[i] {
			want += complex(W[i][j], 0) * x[j]
		}
		if e := cmplx.Abs(dec[i] - want); e > worst {
			worst = e
		}
	}
	return worst
}
