// Package ciflow is a from-scratch Go reproduction of "CiFlow:
// Dataflow Analysis and Optimization of Key Switching for Homomorphic
// Encryption" (ISPASS 2024), grown into a small serving system around
// the paper's central claim: key switching is dominated by data
// movement, and reorganizing the dataflow turns redundant work into
// shared state.
//
// The repository has three layers that apply that claim at increasing
// scope:
//
//   - The reproduction: a functional CKKS/HKS implementation
//     (internal/ckks, internal/hks), the three HKS dataflows
//     (Max-Parallel, Digit-Centric, Output-Centric) and an RPU
//     performance model (internal/dataflow, internal/rpu,
//     internal/sim) that regenerates every table and figure of the
//     paper's evaluation.
//   - Execution: internal/engine runs the MP/DC/OC stage graphs for
//     real — a worker-pool runtime with per-tower and per-digit task
//     graphs and pooled limb buffers — and hoisted key switching
//     (hks.Hoisted, ckks.Evaluator.RotateHoisted) shares one
//     Decompose+ModUp across a rotation fan-out. Both are bit-exact
//     with the serial pipeline.
//   - Serving: internal/serve amortizes the same work across
//     *requests* — an in-process batching key-switch service with an
//     LRU rotation-key cache backed by ckks.KeyChain, a hoisted-state
//     coalescer that merges concurrent requests on one ciphertext
//     into a single shared ModUp, and adaptive micro-batching with
//     per-dataflow routing and backpressure.
//
// The `ciflow` command regenerates the paper artifacts and measures
// all of the above: `ciflow throughput` (per-dataflow ops/sec and
// latency, -hoisted for the shared-ModUp fan-out), `ciflow serve`
// (the load generator: -clients/-rps/-rotations, reporting cache hit
// rate and coalescing factor), and `ciflow perfgate` (the CI
// regression gate over both reports). See README.md for quickstarts
// and DESIGN.md for the architecture and the bit-exactness argument.
package ciflow
