// Package ciflow is a from-scratch Go reproduction of "CiFlow:
// Dataflow Analysis and Optimization of Key Switching for Homomorphic
// Encryption" (ISPASS 2024): a functional CKKS/HKS implementation, the
// three HKS dataflows (Max-Parallel, Digit-Centric, Output-Centric),
// and an RPU performance model that regenerates every table and figure
// of the paper's evaluation. See README.md and DESIGN.md.
package ciflow
