// Package ciflow is a from-scratch Go reproduction of "CiFlow:
// Dataflow Analysis and Optimization of Key Switching for Homomorphic
// Encryption" (ISPASS 2024), grown into a small serving system around
// the paper's central claim: key switching is dominated by data
// movement, and reorganizing the dataflow turns redundant work into
// shared state.
//
// The repository has three layers that apply that claim at increasing
// scope:
//
//   - The reproduction: a functional CKKS/HKS implementation
//     (internal/ckks, internal/hks), the three HKS dataflows
//     (Max-Parallel, Digit-Centric, Output-Centric) and an RPU
//     performance model (internal/dataflow, internal/rpu,
//     internal/sim) that regenerates every table and figure of the
//     paper's evaluation.
//   - Execution: internal/engine runs the MP/DC/OC stage graphs for
//     real — a worker-pool runtime with per-tower and per-digit task
//     graphs and pooled limb buffers — and hoisted key switching
//     (hks.Hoisted, ckks.Evaluator.RotateHoisted) shares one
//     Decompose+ModUp across a rotation fan-out. Both are bit-exact
//     with the serial pipeline.
//   - Serving: internal/serve amortizes the same work across
//     *requests* — an in-process, multi-tenant key-switch service
//     whose API is organized around keyspaces: requests carry a
//     tenant and a ciphertext level, a KeySource resolves
//     KeyID{Tenant, Rot, Level} to evaluation keys (serve.KeyChains
//     maps tenants to ckks.KeyChains), and levels route through one
//     lazily built hks.SwitcherPool. A tenant-sharded key cache under
//     one global byte budget (eviction weighted by Evk.SizeBytes,
//     per-tenant residency floor), a hoisted-state coalescer scoped
//     per keyspace, and per-tenant dispatchers with bounded queues
//     keep tenants isolated while they share the engine.
//   - Workloads: internal/workload represents key-switch traffic as
//     typed schedule DAGs — bootstrapping CoeffToSlot/SlotToCoeff
//     chains derived from the BTS parameter sets, baby-step/
//     giant-step matvecs, and independent fan-out as the degenerate
//     case — each predicting its exact op counts (ModUps with and
//     without hoisting, switches per level). A dependency-aware
//     replay client drives the service respecting the DAG, with
//     inputs derived from predecessor outputs, and requires the
//     measured serve counters to equal the schedule's predictions
//     exactly: coalescing must fire inside hoist groups and never
//     across dependent chain steps.
//
// The `ciflow` command regenerates the paper artifacts and measures
// all of the above: `ciflow throughput` (per-dataflow ops/sec and
// latency, -hoisted for the shared-ModUp fan-out), `ciflow serve`
// (the load generator: -clients/-rps/-rotations over a
// -tenants × -levels keyspace matrix under a -keybudget, reporting
// cache hit rates, key residency, and coalescing per tenant; with
// -workload bootstrap/matvec, the schedule-DAG replay with exact
// count cross-validation), `ciflow schedule` (a schedule's shape,
// predicted counts, and modeled cost including shared-ModUp savings),
// and `ciflow perfgate` (the CI regression gate over all three
// reports, including the keyspace-isolation and schedule-exactness
// invariants). See README.md for quickstarts and DESIGN.md for the
// architecture and the bit-exactness argument.
package ciflow
