// Package ciflow is a from-scratch Go reproduction of "CiFlow:
// Dataflow Analysis and Optimization of Key Switching for Homomorphic
// Encryption" (ISPASS 2024): a functional CKKS/HKS implementation, the
// three HKS dataflows (Max-Parallel, Digit-Centric, Output-Centric),
// and an RPU performance model that regenerates every table and figure
// of the paper's evaluation.
//
// Beyond the paper's model, internal/engine executes the MP/DC/OC
// stage graphs for real: a worker-pool runtime with per-tower and
// per-digit task graphs, pooled limb buffers, and an engine-backed
// ckks.Evaluator. The `ciflow throughput` experiment (flags
// -dataflow, -workers, -requests) measures ops/sec, p50/p99 latency,
// and speedup vs the serial pipeline per dataflow — the measured
// counterpart to the paper's Figure 4. Hoisted key switching
// (hks.Hoisted, ckks.Evaluator.RotateHoisted) shares one
// Decompose+ModUp across a rotation fan-out; `ciflow throughput
// -hoisted` measures the amortization and reconciles it against the
// HoistedOpsSaved model. See README.md and DESIGN.md.
package ciflow
