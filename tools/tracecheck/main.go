// Command tracecheck validates the observability artifacts the CI
// obs-smoke job produces: a Chrome trace-event timeline written by
// `ciflow ... -trace` and a serve report written with -profile.
//
// Usage:
//
//	go run ./tools/tracecheck trace.json serve_report.json
//
// The trace must parse as catapult JSON with at least one complete
// ("X") event, and within every (pid, tid) lane the spans must be
// monotonic and non-overlapping — the guarantee obs.PackLanes makes
// at export time. The serve report must carry stage_shares whose sum
// is positive and at most workers+2 (stages overlap across the
// engine's workers plus the caller draining the graph), and
// request-lifecycle phases with nonzero totals.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type stageShare struct {
	Stage string  `json:"stage"`
	Share float64 `json:"share"`
}

type phaseStat struct {
	Phase   string `json:"phase"`
	Count   uint64 `json:"count"`
	TotalNs uint64 `json:"total_ns"`
}

type serveReport struct {
	Workers     int          `json:"workers"`
	StageShares []stageShare `json:"stage_shares"`
	Phases      []phaseStat  `json:"phases"`
}

func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	type lane struct{ pid, tid int }
	spans := map[lane][]traceEvent{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur < 0 {
			return fmt.Errorf("%s: span %q has negative duration %f", path, ev.Name, ev.Dur)
		}
		k := lane{ev.Pid, ev.Tid}
		spans[k] = append(spans[k], ev)
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no complete (ph=X) events", path)
	}
	total := 0
	for k, evs := range spans {
		sort.Slice(evs, func(a, b int) bool { return evs[a].Ts < evs[b].Ts })
		for i := 1; i < len(evs); i++ {
			prev, cur := evs[i-1], evs[i]
			if cur.Ts < prev.Ts+prev.Dur {
				return fmt.Errorf("%s: lane %d/%d: span %q at %f overlaps %q ending at %f",
					path, k.pid, k.tid, cur.Name, cur.Ts, prev.Name, prev.Ts+prev.Dur)
			}
		}
		total += len(evs)
	}
	fmt.Printf("%s: %d spans over %d lanes, all monotonic and non-overlapping\n", path, total, len(spans))
	return nil
}

func checkReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.StageShares) == 0 {
		return fmt.Errorf("%s: no stage_shares (run without -profile?)", path)
	}
	var sum float64
	for _, s := range rep.StageShares {
		if s.Share < 0 {
			return fmt.Errorf("%s: stage %q has negative share %f", path, s.Stage, s.Share)
		}
		sum += s.Share
	}
	limit := float64(rep.Workers + 2)
	if sum <= 0 || sum > limit {
		return fmt.Errorf("%s: stage shares sum to %.3f, want in (0, %.0f] at %d workers",
			path, sum, limit, rep.Workers)
	}
	if len(rep.Phases) == 0 {
		return fmt.Errorf("%s: no request-lifecycle phases", path)
	}
	var phaseNs uint64
	for _, p := range rep.Phases {
		phaseNs += p.TotalNs
	}
	if phaseNs == 0 {
		return fmt.Errorf("%s: lifecycle phases recorded zero total time", path)
	}
	fmt.Printf("%s: stage shares sum %.3f (limit %.0f), %d lifecycle phases\n", path, sum, limit, len(rep.Phases))
	return nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> <serve_report.json>")
		os.Exit(2)
	}
	if err := checkTrace(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	if err := checkReport(os.Args[2]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Println("tracecheck passed")
}
